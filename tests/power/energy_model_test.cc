/**
 * @file
 * Energy-model tests: static/dynamic composition and the
 * replicate-vs-borrow trade-off the paper's Figure 5(c) captures.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"

using namespace duplexity;

namespace
{

ActivityCounters
busyInterval()
{
    ActivityCounters act;
    act.seconds = 1e-3;
    act.ooo_ops = 2'000'000;
    act.ino_ops = 4'000'000;
    act.l1_accesses = 2'500'000;
    act.llc_accesses = 400'000;
    act.dram_accesses = 60'000;
    act.l0_accesses = 500'000;
    act.link_traversals = 200'000;
    return act;
}

} // namespace

TEST(EnergyModel, IdleSiliconBurnsOnlyStaticPower)
{
    EnergyModel model;
    ActivityCounters idle;
    idle.seconds = 1.0;
    double joules = model.totalJoules(10.0, idle);
    EXPECT_NEAR(joules, 10.0 * model.config().static_w_per_mm2,
                1e-9);
}

TEST(EnergyModel, DynamicEnergyAddsUp)
{
    EnergyModelConfig cfg;
    cfg.static_w_per_mm2 = 0.0;
    EnergyModel model(cfg);
    ActivityCounters act;
    act.seconds = 1.0;
    act.ooo_ops = 1'000'000'000; // 1e9 * 0.65nJ = 0.65 J
    EXPECT_NEAR(model.totalJoules(0.0, act), 0.65, 1e-9);
}

TEST(EnergyModel, InOrderOpsCheaperThanOoO)
{
    EnergyModel model;
    ActivityCounters ooo, ino;
    ooo.seconds = ino.seconds = 1e-3;
    ooo.ooo_ops = 1'000'000;
    ino.ino_ops = 1'000'000;
    EXPECT_LT(model.totalJoules(10.0, ino),
              model.totalJoules(10.0, ooo));
}

TEST(EnergyModel, EnergyPerOpFallsWithUtilization)
{
    // Same silicon and time; more retired work amortizes static
    // power: the core reason Duplexity wins Figure 5(c).
    EnergyModel model;
    ActivityCounters low = busyInterval();
    ActivityCounters high = busyInterval();
    high.ino_ops *= 4;
    EXPECT_LT(model.energyPerOpNj(15.0, high),
              model.energyPerOpNj(15.0, low));
}

TEST(EnergyModel, BiggerChipCostsMoreEnergyPerOp)
{
    EnergyModel model;
    ActivityCounters act = busyInterval();
    EXPECT_LT(model.energyPerOpNj(15.0, act),
              model.energyPerOpNj(20.0, act));
}

TEST(EnergyModel, AverageWattsConsistent)
{
    EnergyModel model;
    ActivityCounters act = busyInterval();
    double watts = model.averageWatts(12.0, act);
    EXPECT_NEAR(watts * act.seconds,
                model.totalJoules(12.0, act), 1e-12);
}

TEST(EnergyModel, ZeroOpsYieldsZeroEnergyPerOp)
{
    EnergyModel model;
    ActivityCounters idle;
    idle.seconds = 1.0;
    EXPECT_EQ(model.energyPerOpNj(12.0, idle), 0.0);
}

TEST(EnergyModel, DramDominatesPerAccessCosts)
{
    const EnergyModelConfig cfg;
    EXPECT_GT(cfg.dram_access_nj, 10.0 * cfg.llc_access_nj);
    EXPECT_GT(cfg.llc_access_nj, cfg.l1_access_nj);
    EXPECT_GT(cfg.l1_access_nj, cfg.l0_access_nj);
}

TEST(EnergyModel, TotalOpsSumsBothDatapaths)
{
    ActivityCounters act;
    act.ooo_ops = 3;
    act.ino_ops = 4;
    EXPECT_EQ(act.totalOps(), 7u);
}
