/**
 * @file
 * Area/frequency model tests: Table II calibration, the Section V
 * overhead statements, and structural monotonicity.
 */

#include <gtest/gtest.h>

#include "power/area_model.hh"

using namespace duplexity;

namespace
{

struct TableIIRow
{
    CoreKind kind;
    double area_mm2;
    double freq_ghz;
};

} // namespace

/** Every Table II row must be reproduced within small tolerance. */
class TableII : public ::testing::TestWithParam<TableIIRow>
{
};

TEST_P(TableII, AreaWithinThreePercent)
{
    const TableIIRow &row = GetParam();
    double area = coreArea(row.kind).total();
    EXPECT_NEAR(area, row.area_mm2, 0.03 * row.area_mm2)
        << toString(row.kind);
}

TEST_P(TableII, FrequencyWithinOnePercent)
{
    const TableIIRow &row = GetParam();
    EXPECT_NEAR(coreFrequencyGhz(row.kind), row.freq_ghz,
                0.01 * row.freq_ghz)
        << toString(row.kind);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableII,
    ::testing::Values(
        TableIIRow{CoreKind::BaselineOoO, 12.1, 3.40},
        TableIIRow{CoreKind::Smt2, 12.2, 3.35},
        TableIIRow{CoreKind::MorphCore, 12.4, 3.30},
        TableIIRow{CoreKind::MasterCore, 12.7, 3.25},
        TableIIRow{CoreKind::MasterCoreReplicated, 16.7, 3.25},
        TableIIRow{CoreKind::LenderCore, 5.5, 3.40}));

TEST(AreaModel, LlcAreaPerMbMatchesTableII)
{
    EXPECT_NEAR(llcAreaPerMb(), 3.9, 1e-9);
}

TEST(AreaModel, MasterCoreOverheadAboutFivePercent)
{
    // Section V: "The total area overhead of the master-core is
    // approximately 5% compared to a baseline 4-wide OoO core."
    double baseline = coreArea(CoreKind::BaselineOoO).total();
    double master = coreArea(CoreKind::MasterCore).total();
    EXPECT_NEAR(master / baseline, 1.05, 0.015);
}

TEST(AreaModel, ReplicationOverheadAboutThirtyEightPercent)
{
    double baseline = coreArea(CoreKind::BaselineOoO).total();
    double repl =
        coreArea(CoreKind::MasterCoreReplicated).total();
    EXPECT_NEAR(repl / baseline, 1.38, 0.03);
}

TEST(AreaModel, MasterCycleTimePenaltyAboutFourPercent)
{
    double baseline = coreFrequencyGhz(CoreKind::BaselineOoO);
    double master = coreFrequencyGhz(CoreKind::MasterCore);
    EXPECT_NEAR(1.0 - master / baseline, 0.044, 0.01);
}

TEST(AreaModel, ComponentOverheadsMatchSectionV)
{
    // Filler TLBs ~0.7%, filler predictor ~1.2%, L0s ~1% of the
    // baseline core (Section V, "Overheads").
    AreaBreakdown master = coreArea(CoreKind::MasterCore);
    double baseline = coreArea(CoreKind::BaselineOoO).total();
    EXPECT_NEAR(master.part("filler-tlbs") / baseline, 0.007, 0.004);
    EXPECT_NEAR(master.part("filler-predictor") / baseline, 0.012,
                0.005);
    EXPECT_NEAR((master.part("l0i") + master.part("l0d")) / baseline,
                0.010, 0.005);
}

TEST(AreaModel, LenderFarSmallerThanMaster)
{
    EXPECT_LT(coreArea(CoreKind::LenderCore).total(),
              0.5 * coreArea(CoreKind::MasterCore).total());
}

TEST(SramModel, MonotonicInSizeAssocPorts)
{
    EXPECT_LT(sramAreaMm2(32 * 1024, 2, 2),
              sramAreaMm2(64 * 1024, 2, 2));
    EXPECT_LT(sramAreaMm2(64 * 1024, 2, 2),
              sramAreaMm2(64 * 1024, 8, 2));
    EXPECT_LT(sramAreaMm2(64 * 1024, 2, 1),
              sramAreaMm2(64 * 1024, 2, 2));
}

TEST(SramModel, LinearInSize)
{
    EXPECT_NEAR(sramAreaMm2(128 * 1024, 2, 2),
                2.0 * sramAreaMm2(64 * 1024, 2, 2), 1e-9);
}

TEST(CamModel, ScalesWithEntriesAndPorts)
{
    EXPECT_LT(camAreaMm2(64, 100, 2), camAreaMm2(128, 100, 2));
    EXPECT_LT(camAreaMm2(64, 100, 1), camAreaMm2(64, 100, 4));
}

TEST(PairedChip, IncludesLenderAndLlc)
{
    double chip = pairedChipAreaMm2(CoreKind::BaselineOoO, 2.0);
    double parts = coreArea(CoreKind::BaselineOoO).total() +
                   coreArea(CoreKind::LenderCore).total() +
                   2.0 * llcAreaPerMb();
    EXPECT_NEAR(chip, parts, 1e-9);
}

TEST(PairedChip, ReplicationIsBiggestChip)
{
    double repl =
        pairedChipAreaMm2(CoreKind::MasterCoreReplicated);
    for (CoreKind kind :
         {CoreKind::BaselineOoO, CoreKind::Smt2, CoreKind::MorphCore,
          CoreKind::MasterCore}) {
        EXPECT_GT(repl, pairedChipAreaMm2(kind));
    }
}

TEST(AreaModel, BreakdownPartsSumToTotal)
{
    AreaBreakdown bd = coreArea(CoreKind::MasterCore);
    double sum = 0.0;
    for (const ComponentArea &part : bd.parts)
        sum += part.mm2;
    EXPECT_DOUBLE_EQ(sum, bd.total());
    EXPECT_EQ(bd.part("no-such-part"), 0.0);
}
