/**
 * @file
 * Figure 5(a): master-core (or alternative) issue-bandwidth
 * utilization across the workload/load grid for all seven designs.
 * Borrowed filler-thread instructions count; lender-core
 * instructions do not (Section VI-A).
 */

#include <cstdio>

#include "fig5_common.hh"

using namespace duplexity;
using namespace duplexity::bench;

int
main()
{
    Grid grid = bench::runGrid();
    printPanel("Figure 5(a): core utilization (%)", grid,
               [](const GridCell &cell) {
                   return 100.0 * cell.result.utilization;
               },
               "% of peak retire bandwidth");

    // Averages across the grid, as the paper's summary reports.
    auto average = [&](DesignKind design) {
        double sum = 0.0;
        int n = 0;
        for (const GridCell &cell : grid.cells) {
            if (cell.design == design) {
                sum += cell.result.utilization;
                ++n;
            }
        }
        return sum / n;
    };
    double base = average(DesignKind::Baseline);
    double smt = average(DesignKind::Smt);
    double dup = average(DesignKind::Duplexity);
    std::printf("Average utilization: baseline %.1f%%, SMT %.1f%%, "
                "Duplexity %.1f%%\n",
                100 * base, 100 * smt, 100 * dup);
    std::printf("Duplexity vs baseline: %.2fx (paper 4.8x); "
                "vs SMT: %.2fx (paper 1.9x)\n",
                dup / base, dup / smt);
    return 0;
}
