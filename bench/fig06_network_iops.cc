/**
 * @file
 * Figure 6: network IOPS utilization per dyad against a single FDR 4x
 * InfiniBand port (56 Gbit/s, 90M ops/s). All workloads issue
 * single-cache-line (64 B) remote accesses, so they are IOPS-limited
 * (Section VIII).
 */

#include <cstdio>

#include "fig5_common.hh"
#include "net/nic_model.hh"

using namespace duplexity;
using namespace duplexity::bench;

int
main()
{
    NicModel nic;
    Grid grid = bench::runGrid();
    printPanel("Figure 6: network IOPS utilization per dyad (%)",
               grid,
               [&nic](const GridCell &cell) {
                   return 100.0 * nic.iopsUtilization(
                                      cell.result
                                          .remote_ops_per_sec);
               },
               "% of 90M ops/s");

    double max_util = 0.0;
    for (const GridCell &cell : grid.cells) {
        max_util = std::max(
            max_util,
            nic.iopsUtilization(cell.result.remote_ops_per_sec));
        // Confirm the IOPS constraint binds for 64B ops.
        if (cell.result.remote_ops_per_sec > 0 &&
            !nic.iopsLimited(cell.result.remote_ops_per_sec, 64)) {
            std::printf("unexpected: bandwidth-limited cell\n");
        }
    }
    std::printf("Max per-dyad IOPS utilization: %.2f%% -> %u dyads "
                "per NIC port\n",
                100.0 * max_util,
                static_cast<unsigned>(1.0 / max_util));
    std::printf("Paper shape: utilization tracks core utilization; "
                "max < 7.1%%, so 14 dyads\ncan share one FDR port.\n");
    return 0;
}
