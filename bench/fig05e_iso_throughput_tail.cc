/**
 * @file
 * Figure 5(e): iso-throughput 99th-percentile tail latency — designs
 * are compared at equal cost by scaling each design's offered load
 * inversely with its performance density (Section VII), normalized
 * to the Baseline design.
 */

#include <cstdio>

#include "fig5_common.hh"

using namespace duplexity;
using namespace duplexity::bench;

int
main()
{
    Grid grid = bench::runGrid(6'000'000);

    auto iso_p99 = [&grid](const GridCell &cell) {
        // A denser design serves the same throughput at lower
        // per-dyad load; scale the offered load accordingly.
        double base_density = performanceDensity(grid.at(
            cell.service, cell.load, DesignKind::Baseline));
        double density = performanceDensity(cell.result);
        double iso_load =
            std::min(0.95, cell.load * base_density / density);
        return queuedP99Us(cell.result, iso_load);
    };

    printPanel("Figure 5(e): iso-throughput p99, normalized to "
               "Baseline",
               grid,
               [&](const GridCell &cell) {
                   GridCell base_cell{cell.service, cell.load,
                                      DesignKind::Baseline,
                                      grid.at(cell.service,
                                              cell.load,
                                              DesignKind::Baseline)};
                   double base = iso_p99(base_cell);
                   double own = iso_p99(cell);
                   return base > 0.0 ? own / base : 0.0;
               },
               "x Baseline (lower is better)");

    auto average = [&](DesignKind design) {
        double sum = 0.0;
        int n = 0;
        for (const GridCell &cell : grid.cells) {
            if (cell.design != design)
                continue;
            GridCell base_cell{cell.service, cell.load,
                               DesignKind::Baseline,
                               grid.at(cell.service, cell.load,
                                       DesignKind::Baseline)};
            double base = iso_p99(base_cell);
            if (base > 0.0) {
                sum += iso_p99(cell) / base;
                ++n;
            }
        }
        return sum / n;
    };
    std::printf("Average iso-throughput p99 vs baseline: SMT %.2fx, "
                "Duplexity %.2fx\n",
                average(DesignKind::Smt),
                average(DesignKind::Duplexity));
    std::printf("Paper shape: Duplexity achieves the lowest "
                "iso-throughput tail (1.8x/2.7x lower\nthan "
                "baseline/SMT on average); SMT variants are *worse* "
                "than baseline here.\n");
    return 0;
}
