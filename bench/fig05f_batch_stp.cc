/**
 * @file
 * Figure 5(f): system throughput (STP) of the batch threads —
 * per-thread progress relative to an alone-run on a lender core,
 * summed across threads — normalized to the Baseline pairing.
 */

#include <cstdio>

#include "fig5_common.hh"

using namespace duplexity;
using namespace duplexity::bench;

int
main()
{
    Grid grid = bench::runGrid();
    printPanel("Figure 5(f): batch STP, normalized to Baseline",
               grid,
               [&grid](const GridCell &cell) {
                   double base =
                       grid.at(cell.service, cell.load,
                               DesignKind::Baseline)
                           .batch_stp;
                   return cell.result.batch_stp / base;
               },
               "x Baseline (higher is better)");

    auto average = [&](DesignKind design) {
        double sum = 0.0;
        int n = 0;
        for (const GridCell &cell : grid.cells) {
            if (cell.design != design)
                continue;
            sum += cell.result.batch_stp /
                   grid.at(cell.service, cell.load,
                           DesignKind::Baseline)
                       .batch_stp;
            ++n;
        }
        return sum / n;
    };
    double dup = average(DesignKind::Duplexity);
    double repl = average(DesignKind::DuplexityRepl);
    std::printf("Average batch STP vs baseline: SMT %.2fx, "
                "MorphCore+ %.2fx, Duplexity %.2fx, "
                "Duplexity+repl %.2fx\n",
                average(DesignKind::Smt),
                average(DesignKind::MorphCorePlus), dup, repl);
    std::printf("Duplexity within %.1f%% of Duplexity+repl "
                "(paper: within 8%%)\n",
                100.0 * (repl - dup) / repl);
    std::printf("Paper shape: Duplexity improves batch STP by ~52%% "
                "and ~24%% over baseline\nand SMT; replication/"
                "MorphCore+ edge it out slightly (no lender-cache "
                "sharing).\n");
    return 0;
}
