/**
 * @file
 * ns/op microbenchmarks for the simulator hot paths, tracking the
 * perf trajectory of processOp, the multi-server queue step, and
 * distribution sampling, plus an end-to-end reduced Figure-5 grid.
 *
 * Emits BENCH_hotpath.json (machine-readable) next to the binary's
 * working directory and prints the same table to stdout. The
 * `baseline_*` fields are the numbers measured at this PR's parent
 * commit on the same host and build type; `speedup` columns compare
 * against them. The old (linear-scan, virtual-sample) queue step is
 * compiled in as a reference and re-measured live, and the bench
 * asserts the optimized step reproduces its outcomes bit-for-bit.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "core/calibration.hh"
#include "core/grid.hh"
#include "cpu/block_precomp.hh"
#include "cpu/core_engine.hh"
#include "cpu/hsmt.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/tlb.hh"
#include "queueing/queue_sim.hh"
#include "sim/check.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"
#include "sim/vmath.hh"
#include "workload/catalog.hh"

using namespace duplexity;
using BenchClock = std::chrono::steady_clock;

namespace
{

/* Baselines measured at the parent commit (Release, same host) with
 * this file's exact loop bodies.  Re-measured at PR 10 (best of two
 * quiet-host runs per metric): the previously committed numbers were
 * captured on a noisier host state and had drifted far enough that
 * several sections showed phantom regressions (queue_step 0.78x,
 * run_queue_sim 0.81x) that reproduced at the parent commit itself. */
constexpr double baseline_process_op_ns = 119.38;
constexpr double baseline_queue_full_ns = 81.08;
constexpr double baseline_grid_cold_s = 2.725;
constexpr double baseline_grid_warm_s = 1.932;

double
secondsSince(BenchClock::time_point t0)
{
    return std::chrono::duration<double>(BenchClock::now() - t0)
        .count();
}

/* Each ns/op micro-section runs kBenchReps times and reports the
 * median rep (selected by the section's headline metric): one noisy
 * rep — a scheduler preemption, a frequency step — no longer moves
 * the committed numbers. Simulated outcomes are deterministic, so
 * reps differ only in wall time and any rep's checksums are valid.
 * The end-to-end sections (replicas, fig5 grid) stay single-shot:
 * they are minutes-scale and the cold/warm split is stateful. */
constexpr int kBenchReps = 3;

template <typename F, typename M>
auto
medianOf(F &&run, M &&metric)
{
    using T = decltype(run());
    std::array<T, kBenchReps> reps{};
    for (T &r : reps)
        r = run();
    std::sort(reps.begin(), reps.end(),
              [&](const T &a, const T &b) {
                  return metric(a) < metric(b);
              });
    return reps[kBenchReps / 2];
}

/* ---------------- processOp ---------------- */

double
benchProcessOp()
{
    DyadMemorySystem mem(MemSystemConfig::makeDefault());
    CoreEngine engine{CoreEngineConfig{}};
    auto pred = makePredictor(PredictorConfig::Kind::Tournament);
    Btb btb(2048, 4);
    ReturnAddressStack ras(32);
    Rng rng(4);
    BatchSource source(makeFlannXY(10.0, 0.0, 0), rng.fork(1));
    Lane lane;
    LaneConfig cfg = engine.defaultLaneConfig(IssueMode::OutOfOrder);
    cfg.path = mem.masterPath();
    cfg.branch = {pred.get(), &btb, &ras};
    lane.configure(cfg);

    const std::uint64_t warm = 2'000'000, n = 20'000'000;
    for (std::uint64_t i = 0; i < warm; ++i)
        engine.processOp(lane, source.next());
    auto t0 = BenchClock::now();
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        acc += engine.processOp(lane, source.next()).commit_time;
    double ns = 1e9 * secondsSince(t0) / static_cast<double>(n);
    if (acc == 0) // defeat dead-code elimination
        std::printf("(unexpected zero checksum)\n");
    return ns;
}

/* ---------------- memory-hierarchy fast paths ---------------- */

struct FastSlowNs
{
    double fast = 0.0;
    double slow = 0.0;
    /** Fast-path activation count in the fast iteration (filter
     *  hits); zero in the forced-slow reference by construction. */
    std::uint64_t activations = 0;
};

/**
 * Cache::access ns/op, MRU-friendly fast path vs the forced-slow
 * reference (setFastPathEnabled(false) = the pre-PR scan-every-access
 * behaviour). The loop is an 8-byte-stride re-walk of a buffer that
 * exactly fills the cache — the shape of a scan/memcpy inner loop:
 * all sets run at full occupancy (as a steady-state L1 does), 7 of 8
 * accesses repeat the previous line and land in the MRU filter, and
 * addresses come from arithmetic, not a side array that would stream
 * its own cache traffic through the measurement. Both variants see
 * identical addresses; latency sums and stats must match.
 */
FastSlowNs
benchCacheAccess()
{
    CacheConfig cfg;
    cfg.name = "bench-l1d";
    cfg.size_bytes = 32 * 1024;
    cfg.line_bytes = 64;
    cfg.assoc = 8;
    cfg.hit_latency = 2;
    cfg.ports = 2;

    const Addr base = Addr(0x140) << 32;
    const Addr span = 32 * 1024; // buffer == cache size: sets full
    const std::uint64_t n = 25'000'000;
    FastSlowNs out;
    std::uint64_t lat_fast = 0;
    std::uint64_t lat_slow = 0;
    CacheStats stats_fast;
    CacheStats stats_slow;
    for (bool fast : {true, false}) {
        Cache cache(cfg);
        cache.setFastPathEnabled(fast);
        Cycle now = 0;
        std::uint64_t lat = 0;
        for (Addr off = 0; off < span; off += 8) // warm lap: fills
            lat += cache.access(base + off, false, now++).latency;
        auto t0 = BenchClock::now();
        Addr off = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            lat += cache.access(base + off, (off & 127) == 0, now++)
                       .latency;
            off = (off + 8) & (span - 1);
        }
        double ns = 1e9 * secondsSince(t0) / static_cast<double>(n);
        if (fast) {
            out.fast = ns;
            out.activations = cache.fastHits();
            lat_fast = lat;
            stats_fast = cache.stats();
        } else {
            out.slow = ns;
            lat_slow = lat;
            stats_slow = cache.stats();
        }
    }
    DPX_CHECK_EQ(lat_fast, lat_slow)
        << " — cache fast path changed latencies";
    DPX_CHECK_EQ(stats_fast.hits, stats_slow.hits);
    DPX_CHECK_EQ(stats_fast.misses, stats_slow.misses);
    DPX_CHECK_EQ(stats_fast.writebacks, stats_slow.writebacks);
    return out;
}

/**
 * Tlb::access ns/op, one-entry VPN filter vs forced-slow (the L1
 * vector probe on every lookup). 64-byte strides give 64 consecutive
 * same-page lookups — the common case the filter exists for.
 */
FastSlowNs
benchTlbLookup()
{
    const Addr base = Addr(0x141) << 32;
    const Addr span = 32 * 4096; // 32 pages: L1-TLB-resident, pow2
    const std::uint64_t n = 25'000'000;
    FastSlowNs out;
    std::uint64_t lat_fast = 0;
    std::uint64_t lat_slow = 0;
    for (bool fast : {true, false}) {
        Tlb tlb{TlbConfig{}};
        tlb.setFastPathEnabled(fast);
        std::uint64_t lat = 0;
        for (Addr off = 0; off < span; off += 64) // warm: walks, fills
            lat += tlb.access(base + off);
        auto t0 = BenchClock::now();
        Addr off = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            lat += tlb.access(base + off);
            off = (off + 64) & (span - 1);
        }
        double ns = 1e9 * secondsSince(t0) / static_cast<double>(n);
        if (fast) {
            out.fast = ns;
            out.activations = tlb.fastHits();
            lat_fast = lat;
        } else {
            out.slow = ns;
            lat_slow = lat;
        }
    }
    DPX_CHECK_EQ(lat_fast, lat_slow)
        << " — TLB fast path changed latencies";
    return out;
}

/* ---------------- block-batched core stepping ---------------- */

struct BlockStepNs
{
    double per_op = 0.0;
    double block = 0.0;
    /** Ops that went through the split-phase precompute pass. */
    std::uint64_t split_phase_ops = 0;
    /** Ops stepped straight off the SoA lane view. */
    std::uint64_t soa_block_ops = 0;
    /** Raw-draw buffer refills in the blocked rig's source. */
    std::uint64_t soa_draw_refills = 0;
};

/**
 * The measurement-loop shape the scenario/calibration/sweep callers
 * converted to: draw-one/processOp-one vs 256-op refills through
 * processBlock. Both rigs are seeded identically; final lane
 * timestamps and op counts must match exactly.
 */
BlockStepNs
benchBlockStep()
{
    struct Rig
    {
        DyadMemorySystem mem;
        CoreEngine engine;
        std::unique_ptr<BranchPredictor> pred;
        Btb btb;
        ReturnAddressStack ras;
        BatchSource source;
        Lane lane;

        Rig()
            : mem(MemSystemConfig::makeDefault()),
              engine(CoreEngineConfig{}),
              pred(makePredictor(PredictorConfig::Kind::Tournament)),
              btb(2048, 4), ras(32),
              source(makeFlannXY(10.0, 0.0, 0), Rng(4).fork(1))
        {
            LaneConfig cfg =
                engine.defaultLaneConfig(IssueMode::OutOfOrder);
            cfg.path = mem.masterPath();
            cfg.branch = {pred.get(), &btb, &ras};
            lane.configure(cfg);
        }
    };

    // Block-multiples so both rigs process identical op totals.
    const std::uint64_t warm = 8'000 * 256;
    const std::uint64_t n = 80'000 * 256;
    BlockStepNs out;

    // Each rig lives in its own scope so the second reuses the same
    // allocator arena as the first: with both alive at once, the
    // second rig's caches/tables land at different page offsets and
    // pay conflict misses the first never sees (measured ~15% skew on
    // this host), which is placement luck, not pipeline cost.
    Cycle a_fetch = 0;
    std::uint64_t a_ops = 0, a_mispredicts = 0;
    {
        Rig a;
        for (std::uint64_t i = 0; i < warm; ++i)
            a.engine.processOp(a.lane, a.source.next());
        auto t0 = BenchClock::now();
        for (std::uint64_t i = 0; i < n; ++i)
            a.engine.processOp(a.lane, a.source.next());
        out.per_op = 1e9 * secondsSince(t0) / static_cast<double>(n);
        a_fetch = a.lane.nextFetch();
        a_ops = a.lane.stats().ops;
        a_mispredicts = a.lane.stats().mispredicts;
    }

    Rig b;
    const Cycle never = ~Cycle(0);
    OpBlock block;
    std::uint64_t done = 0;
    auto run_blocked = [&](std::uint64_t target) {
        while (done < target) {
            block.clear();
            b.source.fillBlock(block, kOpBlockCapacity);
            std::uint32_t head = 0;
            while (head < block.size()) {
                BlockOutcome blk = b.engine.processBlock(
                    b.lane, block, head, never, 0, never);
                head += blk.processed;
            }
            done += block.size();
        }
    };
    auto t0 = BenchClock::now();
    run_blocked(warm);
    t0 = BenchClock::now();
    run_blocked(warm + n);
    out.block = 1e9 * secondsSince(t0) / static_cast<double>(n);

    DPX_CHECK_EQ(a_fetch, b.lane.nextFetch())
        << " — block stepping diverged from the per-op loop";
    DPX_CHECK_EQ(a_ops, b.lane.stats().ops);
    DPX_CHECK_EQ(a_mispredicts, b.lane.stats().mispredicts);
    out.split_phase_ops = b.engine.splitPhaseOps();
    out.soa_block_ops = b.engine.soaBlockOps();
    out.soa_draw_refills = b.source.soaDrawRefills();
    return out;
}

/* ---------------- lane-vectorized block precompute ---------------- */

struct PrecompNs
{
    double simd = 0.0;
    double scalar = 0.0;
};

/**
 * precomputeBlock ns/op over catalog-filled SoA blocks: the
 * lane-vectorized body vs setSimdEnabled(false) forced-scalar. The
 * blocks come from a real catalog source so the class mix (and thus
 * the branch-lane arithmetic's input distribution) is the workload's,
 * not synthetic. Before timing, every block's SIMD and scalar hints
 * are compared field-by-field — the bench refuses to report a speedup
 * for a body that diverged.
 */
PrecompNs
benchPrecomputeBlock()
{
    constexpr int kBlocks = 8;
    std::vector<OpBlock> blocks(kBlocks);
    Rng rng(11);
    BatchSource source(makeFlannXY(10.0, 0.0, 0), rng.fork(1));
    std::vector<SoaLaneView> views;
    std::vector<std::uint32_t> sizes;
    std::uint64_t round_ops = 0;
    for (OpBlock &b : blocks) {
        b.clear();
        source.fillBlock(b, kOpBlockCapacity);
        views.push_back(SoaLaneView{
            b.cls(), b.pc(), b.memAddr(), b.taken(),
            b.dep1(), b.dep2(), b.stallUs(), b.endOfRequest()});
        sizes.push_back(b.size());
        round_ops += b.size();
    }

    // Field-identity gate: both bodies, every block, every lane.
    for (int k = 0; k < kBlocks; ++k) {
        BlockPrecomp vec, ref;
        precomputeBlockSimd(views[k], sizes[k], vec);
        precomputeBlockScalar(views[k], sizes[k], ref);
        for (std::uint32_t i = 0; i < sizes[k]; ++i) {
            DPX_CHECK_EQ(vec.code[i], ref.code[i])
                << " — SIMD precompute code diverged at lane " << i;
            DPX_CHECK_EQ(vec.lat[i], ref.lat[i]);
            DPX_CHECK_EQ(vec.new_line[i], ref.new_line[i]);
            DPX_CHECK_EQ(vec.has_dep[i], ref.has_dep[i]);
        }
    }

    PrecompNs out;
    for (bool use_simd : {true, false}) {
        const bool prev = simd::setSimdEnabled(use_simd);
        BlockPrecomp pre;
        std::uint64_t acc = 0;
        const std::uint64_t rounds = 200'000;
        for (std::uint64_t r = 0; r < rounds / 10; ++r) // warm
            for (int k = 0; k < kBlocks; ++k)
                precomputeBlock(views[k], sizes[k], pre);
        auto t0 = BenchClock::now();
        for (std::uint64_t r = 0; r < rounds; ++r) {
            for (int k = 0; k < kBlocks; ++k) {
                precomputeBlock(views[k], sizes[k], pre);
                // Data-dependent read per call so the (pure, inlined)
                // body cannot be hoisted out of the rep loop.
                acc += pre.lat[(r + static_cast<std::uint64_t>(k)) & 255];
            }
        }
        double ns = 1e9 * secondsSince(t0) /
                    static_cast<double>(rounds * round_ops);
        simd::setSimdEnabled(prev);
        if (acc == 0)
            std::printf("(unexpected zero checksum)\n");
        if (use_simd)
            out.simd = ns;
        else
            out.scalar = ns;
    }
    return out;
}

/* ---------------- HSMT stall fast-forward ---------------- */

struct HsmtFfNs
{
    double fast = 0.0;
    double legacy = 0.0;
    std::uint64_t ff_polls = 0;
    std::uint64_t ff_cycles = 0;
};

/**
 * Lender-style HSMT unit ns per committed op, event-driven poll
 * fast-forward vs the forced per-poll schedule. Two FLANN-X-Y batch
 * contexts on an 8-lane unit spend most cycles parked on 1 µs remote
 * stalls, so the legacy schedule burns its time stepping empty
 * 200-cycle polls — the idle pattern the fast-forward elides. Both
 * runs must commit the identical op sequence.
 */
HsmtFfNs
benchHsmtFastForward()
{
    class OpCounter : public CommitSink
    {
      public:
        void
        onCommit(const VirtualContext &, const OpOutcome &) override
        {
            ++ops;
        }
        std::uint64_t ops = 0;
    };

    const Cycle horizon = 40'000'000;
    HsmtFfNs out;
    std::uint64_t ops_fast = 0, ops_legacy = 0;
    for (bool fast : {true, false}) {
        DyadMemorySystem mem(MemSystemConfig::makeDefault());
        CoreEngine engine{CoreEngineConfig{}};
        auto pred = makePredictor(PredictorConfig::Kind::GshareSmall);
        Btb btb(2048, 4);
        ReturnAddressStack ras(16);
        VirtualContextPool pool;
        std::vector<std::unique_ptr<BatchSource>> sources;
        std::vector<std::unique_ptr<VirtualContext>> ctxs;
        Rng rng(0xfa57ull);
        for (int i = 0; i < 2; ++i) {
            sources.push_back(std::make_unique<BatchSource>(
                makeFlannXY(0.3, 1.0, static_cast<ThreadId>(i)),
                rng.fork(i)));
            ctxs.push_back(std::make_unique<VirtualContext>(
                static_cast<ThreadId>(i + 1), sources.back().get()));
            pool.add(ctxs.back().get());
        }
        HsmtUnit unit(engine, pool, HsmtConfig{}, Frequency(3.4e9));
        LaneConfig proto = engine.defaultLaneConfig(IssueMode::InOrder);
        proto.path = mem.lenderPath();
        proto.branch = {pred.get(), &btb, &ras};
        unit.configureLanes(proto);
        unit.setFastForwardEnabled(fast);
        unit.openWindow(0, HsmtUnit::never);

        OpCounter sink;
        auto t0 = BenchClock::now();
        unit.runUntil(horizon, &sink);
        double ns = 1e9 * secondsSince(t0) /
                    static_cast<double>(sink.ops);
        if (fast) {
            out.fast = ns;
            out.ff_polls = unit.fastForwardedPolls();
            out.ff_cycles = unit.fastForwardedCycles();
            ops_fast = sink.ops;
        } else {
            out.legacy = ns;
            ops_legacy = sink.ops;
        }
    }
    DPX_CHECK_EQ(ops_fast, ops_legacy)
        << " — fast-forward changed the committed op count";
    return out;
}

/* ---------------- distribution sampling ---------------- */

struct SamplingNs
{
    double virt = 0.0;
    double fast = 0.0;
    double block = 0.0;
    /** Block leg re-run with the vector-log kernels forced off. */
    double block_vmath_off = 0.0;
    /** Lanes the vector log mapped during the timed block leg. */
    std::uint64_t vmath_lanes = 0;
};

SamplingNs
benchSampling(const DistributionPtr &dist)
{
    SamplingNs out;
    const std::uint64_t n = 20'000'000;
    double acc = 0.0;
    // Field-identity gate for the vmath split below: the forced-off
    // route must emit the same bits before its timing means anything.
    {
        FastSampler sampler(dist);
        double on[4096], off[4096];
        Rng rng_on(7), rng_off(7);
        sampler.sampleN(rng_on, on, 4096);
        {
            const bool prev = vmath::setVmathEnabled(false);
            sampler.sampleN(rng_off, off, 4096);
            vmath::setVmathEnabled(prev);
        }
        for (std::size_t i = 0; i < 4096; ++i)
            DPX_CHECK_EQ(on[i], off[i])
                << " — vmath on/off variates diverged at " << i;
    }
    // Each leg builds its rig inside its own scope (the benchBlockStep
    // arena idiom): with the virtual distribution and a long-lived
    // FastSampler resident at once, placement luck skewed fast vs
    // virtual by more than the dispatch cost being measured — the
    // committed JSON showed the devirtualized path "slower" than the
    // virtual one on exponential, an inversion that disappears once
    // every leg reuses the same freshly-recycled arena.
    {
        Rng rng(7);
        auto t0 = BenchClock::now();
        for (std::uint64_t i = 0; i < n; ++i)
            acc += dist->sample(rng);
        out.virt = 1e9 * secondsSince(t0) / static_cast<double>(n);
    }
    {
        FastSampler sampler(dist);
        Rng rng(7);
        auto t0 = BenchClock::now();
        for (std::uint64_t i = 0; i < n; ++i)
            acc -= sampler.sample(rng);
        out.fast = 1e9 * secondsSince(t0) / static_cast<double>(n);
    }
    {
        FastSampler sampler(dist);
        Rng rng(7);
        double buf[256];
        const std::uint64_t lanes0 = vmath::vmathBlockLanes();
        auto t0 = BenchClock::now();
        for (std::uint64_t i = 0; i < n; i += 256) {
            sampler.sampleN(rng, buf, 256);
            acc += buf[0];
        }
        out.block = 1e9 * secondsSince(t0) / static_cast<double>(n);
        out.vmath_lanes = vmath::vmathBlockLanes() - lanes0;
    }
    {
        FastSampler sampler(dist);
        Rng rng(7);
        double buf[256];
        const bool prev = vmath::setVmathEnabled(false);
        auto t0 = BenchClock::now();
        for (std::uint64_t i = 0; i < n; i += 256) {
            sampler.sampleN(rng, buf, 256);
            acc += buf[0];
        }
        out.block_vmath_off =
            1e9 * secondsSince(t0) / static_cast<double>(n);
        vmath::setVmathEnabled(prev);
    }
    if (acc == 1.0)
        std::printf("(checksum)\n");
    return out;
}

/* ---------------- multi-server queue step ---------------- */

/** The queue workload both step variants run: M/G/8, empirical
 *  (IPC-scaled) service, 70 % load. */
struct QueueWorkload
{
    DistributionPtr interarrival;
    DistributionPtr service;
    static constexpr std::uint32_t servers = 8;

    QueueWorkload()
    {
        interarrival = makeExponential(1e-6 / 0.7 / servers);
        std::vector<double> pop;
        Rng r(9);
        for (int i = 0; i < 4096; ++i)
            pop.push_back(1e-6 * (0.5 + r.uniform()));
        service = makeScaled(makeEmpirical(pop), 1.0);
    }
};

/** Accumulated outcomes; compared bitwise between step variants. */
struct StepChecksum
{
    double wait = 0.0;
    double busy = 0.0;
    double idle = 0.0;
    double now = 0.0;

    bool
    operator==(const StepChecksum &o) const
    {
        return wait == o.wait && busy == o.busy && idle == o.idle &&
               now == o.now;
    }
};

/** The pre-PR step: one virtual sample per stream, O(k) scan. */
double
benchQueueStepOld(const QueueWorkload &w, std::uint64_t n,
                  StepChecksum &sum)
{
    Rng root(1);
    Rng arrival_rng = root.fork(1);
    Rng service_rng = root.fork(2);
    std::vector<double> free_at(w.servers, 0.0);
    double now = 0.0;
    auto t0 = BenchClock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        double inter = w.interarrival->sample(arrival_rng);
        double service = w.service->sample(service_rng);
        now += inter;
        auto it = std::min_element(free_at.begin(), free_at.end());
        if (now > *it)
            sum.idle += now - *it;
        double start = std::max(now, *it);
        sum.wait += start - now;
        *it = start + service;
        sum.busy += service;
    }
    double ns = 1e9 * secondsSince(t0) / static_cast<double>(n);
    sum.now = now;
    return ns;
}

/** This PR's step: block-presampled FastSamplers, O(log k) heap. */
double
benchQueueStepNew(const QueueWorkload &w, std::uint64_t n,
                  StepChecksum &sum)
{
    Rng root(1);
    Rng arrival_rng = root.fork(1);
    Rng service_rng = root.fork(2);
    FastSampler interarrival(w.interarrival);
    FastSampler service_dist(w.service);
    ServerSchedule schedule(w.servers);
    constexpr std::size_t block = 256;
    double inter_buf[block], service_buf[block];
    double now = 0.0;
    auto t0 = BenchClock::now();
    for (std::uint64_t i = 0; i < n; i += block) {
        interarrival.sampleN(arrival_rng, inter_buf, block);
        service_dist.sampleN(service_rng, service_buf, block);
        for (std::size_t j = 0; j < block; ++j) {
            now += inter_buf[j];
            ServerSchedule::Assignment a =
                schedule.assign(now, service_buf[j]);
            if (a.idle_before >= 0.0)
                sum.idle += a.idle_before;
            sum.wait += a.start - now;
            sum.busy += service_buf[j];
        }
    }
    double ns = 1e9 * secondsSince(t0) / static_cast<double>(n);
    sum.now = now;
    return ns;
}

/**
 * Scheduling-only comparison on pre-generated variates: the O(k)
 * linear scan vs the O(log k) heap, isolated from the (identical)
 * sampling cost. This is where the algorithmic change shows.
 */
struct SchedNs
{
    double scan = 0.0;
    double heap = 0.0;
};

SchedNs
benchScheduling(const QueueWorkload &w, std::uint32_t servers,
                std::uint64_t n)
{
    std::vector<double> inter(n), service(n);
    {
        Rng root(1);
        Rng arrival_rng = root.fork(1);
        Rng service_rng = root.fork(2);
        FastSampler ia(w.interarrival), sv(w.service);
        ia.sampleN(arrival_rng, inter.data(), n);
        sv.sampleN(service_rng, service.data(), n);
        // Rescale arrivals so `servers` stays ~70 % utilized.
        double scale = static_cast<double>(servers) /
                       QueueWorkload::servers;
        for (double &x : inter)
            x /= scale;
    }
    SchedNs out;
    double scan_wait = 0.0, heap_wait = 0.0;
    {
        std::vector<double> free_at(servers, 0.0);
        double now = 0.0;
        auto t0 = BenchClock::now();
        for (std::uint64_t i = 0; i < n; ++i) {
            now += inter[i];
            auto it = std::min_element(free_at.begin(), free_at.end());
            double start = std::max(now, *it);
            scan_wait += start - now;
            *it = start + service[i];
        }
        out.scan = 1e9 * secondsSince(t0) / static_cast<double>(n);
    }
    {
        ServerSchedule schedule(servers);
        double now = 0.0;
        auto t0 = BenchClock::now();
        for (std::uint64_t i = 0; i < n; ++i) {
            now += inter[i];
            heap_wait += schedule.assign(now, service[i]).start - now;
        }
        out.heap = 1e9 * secondsSince(t0) / static_cast<double>(n);
    }
    DPX_CHECK_EQ(scan_wait, heap_wait)
        << " — scheduling outcomes diverged at k=" << servers;
    return out;
}

/** Full runQueueSim ns/request at k=8 (includes stats pipeline). */
double
benchQueueFull(const QueueWorkload &w, std::uint64_t &completed)
{
    QueueSimConfig cfg;
    cfg.interarrival = w.interarrival;
    cfg.service = w.service;
    cfg.servers = w.servers;
    cfg.warmup_requests = 100'000;
    cfg.batch_size = 1'000'000;
    cfg.min_batches = 20;
    cfg.max_batches = 20;
    cfg.relative_error = 1e-12;
    auto t0 = BenchClock::now();
    QueueSimResult res = runQueueSim(cfg);
    completed = res.completed;
    return 1e9 * secondsSince(t0) / static_cast<double>(res.completed);
}

/* ---------------- queue idle fast-forward ---------------- */

struct IdleFfNs
{
    double fast = 0.0;
    double legacy = 0.0;
    std::uint64_t fast_forwards = 0;
};

/**
 * runQueueSim ns/request at k=8 with the idle fast-forward on vs
 * config-disabled, at the given per-server load.  Deep idle (2 %)
 * is the regime the path targets: drained stretches run long enough
 * to pass the k-seat proving period, so most arrivals seat O(1).
 * Moderate load (30 %) is the parity guard: stretches average ~1.1
 * arrivals there, the ring must stay dormant, and the recording
 * writes must cost nothing measurable.  Every summary statistic
 * must match bitwise either way, and the legacy run must never have
 * fast-forwarded.
 */
IdleFfNs
benchQueueIdleFf(const QueueWorkload &w, double load,
                 bool expect_activation)
{
    IdleFfNs out;
    QueueSimResult res_fast, res_legacy;
    for (bool ff : {true, false}) {
        QueueSimConfig cfg;
        cfg.interarrival =
            makeExponential(1e-6 / load / QueueWorkload::servers);
        cfg.service = w.service;
        cfg.servers = QueueWorkload::servers;
        cfg.warmup_requests = 100'000;
        cfg.batch_size = 500'000;
        cfg.min_batches = 10;
        cfg.max_batches = 10;
        cfg.relative_error = 1e-12;
        cfg.idle_fast_forward = ff;
        auto t0 = BenchClock::now();
        QueueSimResult res = runQueueSim(cfg);
        double ns = 1e9 * secondsSince(t0) /
                    static_cast<double>(res.completed);
        if (ff) {
            out.fast = ns;
            out.fast_forwards = res.idle_fast_forwards;
            res_fast = res;
        } else {
            out.legacy = ns;
            res_legacy = res;
        }
    }
    DPX_CHECK_EQ(res_fast.completed, res_legacy.completed)
        << " — idle fast-forward changed the completion count";
    DPX_CHECK_EQ(res_fast.meanSojourn(), res_legacy.meanSojourn());
    DPX_CHECK_EQ(res_fast.p99Sojourn(), res_legacy.p99Sojourn());
    DPX_CHECK_EQ(res_fast.wait.mean(), res_legacy.wait.mean());
    DPX_CHECK_EQ(res_fast.idle_periods.mean(),
                 res_legacy.idle_periods.mean());
    DPX_CHECK_EQ(res_fast.utilization, res_legacy.utilization);
    if (expect_activation) {
        DPX_CHECK(res_fast.idle_fast_forwards > 0)
            << " — fast path never activated at load " << load;
    }
    DPX_CHECK_EQ(res_legacy.idle_fast_forwards, std::uint64_t(0));
    return out;
}

/* ---------------- replicated tail engine ---------------- */

struct ReplicaBenchResult
{
    double seconds = 0.0;
    double p99 = 0.0;
    std::uint64_t completed = 0;
    bool converged = false;
};

/**
 * One replicated M/M/1 tail run. With @p to_convergence the run uses
 * the production stopping rule (p99 CI within 5 %); otherwise the
 * target is unattainable and every replica drains its share of the
 * fixed max_batches budget, so R sweeps compare equal total work.
 */
ReplicaBenchResult
benchReplicatedRun(std::uint32_t replicas, bool to_convergence)
{
    QueueSimConfig cfg = makeMg1(makeExponential(1e-6), 0.9, 1234);
    cfg.warmup_requests = 50'000;
    cfg.batch_size = 250'000;
    cfg.min_batches = 8;
    cfg.max_batches = 40;
    cfg.relative_error = to_convergence ? 0.05 : 1e-12;
    cfg.replicas = replicas;
    ReplicaBenchResult out;
    auto t0 = BenchClock::now();
    QueueSimResult res = runQueueSim(cfg);
    out.seconds = secondsSince(t0);
    out.p99 = res.p99Sojourn();
    out.completed = res.completed;
    out.converged = res.converged;
    return out;
}

/* ---------------- end-to-end reduced fig5 grid ---------------- */

GridSpec
reducedFig5Spec()
{
    GridSpec spec;
    spec.services = {MicroserviceKind::FlannLL,
                     MicroserviceKind::WordStem};
    spec.loads = {0.5};
    spec.designs = {DesignKind::Baseline, DesignKind::Smt,
                    DesignKind::Duplexity};
    spec.warmup_cycles = 300'000;
    spec.measure_cycles = 1'000'000;
    spec.base_seed = 42;
    spec.threads = 8;
    return spec;
}

} // namespace

int
main()
{
    std::printf("hotpath_bench: simulator hot-path ns/op\n\n");

    double process_op_ns = medianOf(
        [] { return benchProcessOp(); }, [](double ns) { return ns; });
    std::printf("processOp            %8.2f ns/op   (baseline %.2f, "
                "speedup %.2fx)\n",
                process_op_ns, baseline_process_op_ns,
                baseline_process_op_ns / process_op_ns);

    FastSlowNs cache_ns =
        medianOf([] { return benchCacheAccess(); },
                 [](const FastSlowNs &r) { return r.fast; });
    std::printf("cache access         %8.2f ns fast / %.2f forced-slow "
                "(speedup %.2fx)\n",
                cache_ns.fast, cache_ns.slow,
                cache_ns.slow / cache_ns.fast);
    FastSlowNs tlb_ns =
        medianOf([] { return benchTlbLookup(); },
                 [](const FastSlowNs &r) { return r.fast; });
    std::printf("tlb lookup           %8.2f ns fast / %.2f forced-slow "
                "(speedup %.2fx)\n",
                tlb_ns.fast, tlb_ns.slow, tlb_ns.slow / tlb_ns.fast);
    BlockStepNs block_ns =
        medianOf([] { return benchBlockStep(); },
                 [](const BlockStepNs &r) { return r.block; });
    std::printf("core block step      %8.2f ns per-op / %.2f blocked "
                "(speedup %.2fx)\n",
                block_ns.per_op, block_ns.block,
                block_ns.per_op / block_ns.block);
    PrecompNs precomp_ns =
        medianOf([] { return benchPrecomputeBlock(); },
                 [](const PrecompNs &r) { return r.simd; });
    std::printf("precompute block     %8.2f ns/op simd / %.2f "
                "forced-scalar (speedup %.2fx%s)\n",
                precomp_ns.simd, precomp_ns.scalar,
                precomp_ns.scalar / precomp_ns.simd,
                simd::kSimdCompiled ? "" : ", simd compiled out");
    HsmtFfNs hsmt_ns =
        medianOf([] { return benchHsmtFastForward(); },
                 [](const HsmtFfNs &r) { return r.fast; });
    std::printf("hsmt unit step       %8.2f ns fast-fwd / %.2f "
                "forced-slow (speedup %.2fx)\n",
                hsmt_ns.fast, hsmt_ns.legacy,
                hsmt_ns.legacy / hsmt_ns.fast);

    QueueWorkload queue_workload;
    SamplingNs expo =
        medianOf([&] { return benchSampling(queue_workload.interarrival); },
                 [](const SamplingNs &r) { return r.block; });
    SamplingNs scaled_emp =
        medianOf([&] { return benchSampling(queue_workload.service); },
                 [](const SamplingNs &r) { return r.block; });
    std::printf("sample exponential   %8.2f ns virtual / %.2f fast / "
                "%.2f block\n",
                expo.virt, expo.fast, expo.block);
    std::printf("  vector log         %8.2f ns block / %.2f forced-"
                "vmath-off (speedup %.2fx, %llu lanes)\n",
                expo.block, expo.block_vmath_off,
                expo.block_vmath_off / expo.block,
                static_cast<unsigned long long>(expo.vmath_lanes));
    std::printf("sample scaled-empir. %8.2f ns virtual / %.2f fast / "
                "%.2f block\n",
                scaled_emp.virt, scaled_emp.fast, scaled_emp.block);

    const std::uint64_t queue_ops = 20'000'000;
    struct QueueRep
    {
        double ns = 0.0;
        StepChecksum sum;
    };
    // Old/new reps interleave (old, new, old, new, …) instead of
    // running as two back-to-back medianOf batches: an order-swap
    // probe showed the side measured second absorbs the host's
    // frequency/thermal drift — enough to flip the reported ratio —
    // while interleaved pairs see the same conditions.
    std::array<QueueRep, kBenchReps> old_reps{}, new_reps{};
    for (int rep = 0; rep < kBenchReps; ++rep) {
        old_reps[rep].ns = benchQueueStepOld(queue_workload, queue_ops,
                                             old_reps[rep].sum);
        new_reps[rep].ns = benchQueueStepNew(queue_workload, queue_ops,
                                             new_reps[rep].sum);
    }
    auto by_ns = [](const QueueRep &a, const QueueRep &b) {
        return a.ns < b.ns;
    };
    std::sort(old_reps.begin(), old_reps.end(), by_ns);
    std::sort(new_reps.begin(), new_reps.end(), by_ns);
    QueueRep old_rep = old_reps[kBenchReps / 2];
    QueueRep new_rep = new_reps[kBenchReps / 2];
    double queue_old_ns = old_rep.ns;
    double queue_new_ns = new_rep.ns;
    bool identical = old_rep.sum == new_rep.sum;
    std::printf("queue step k=8 old   %8.2f ns/req\n", queue_old_ns);
    std::printf("queue step k=8 new   %8.2f ns/req  (speedup %.2fx, "
                "outcomes %s)\n",
                queue_new_ns, queue_old_ns / queue_new_ns,
                identical ? "bit-identical" : "MISMATCH");
    if (!identical) {
        std::fprintf(stderr,
                     "FATAL: heap step diverged from scan step\n");
        return 1;
    }

    SchedNs sched8 =
        medianOf([&] { return benchScheduling(queue_workload, 8,
                                              20'000'000); },
                 [](const SchedNs &r) { return r.heap; });
    SchedNs sched64 =
        medianOf([&] { return benchScheduling(queue_workload, 64,
                                              20'000'000); },
                 [](const SchedNs &r) { return r.heap; });
    std::printf("scheduling k=8       %8.2f ns scan / %.2f heap "
                "(speedup %.2fx)\n",
                sched8.scan, sched8.heap, sched8.scan / sched8.heap);
    std::printf("scheduling k=64      %8.2f ns scan / %.2f heap "
                "(speedup %.2fx)\n",
                sched64.scan, sched64.heap,
                sched64.scan / sched64.heap);

    std::uint64_t queue_full_reqs = 0;
    double queue_full_ns = medianOf(
        [&] { return benchQueueFull(queue_workload, queue_full_reqs); },
        [](double ns) { return ns; });
    std::printf("runQueueSim k=8      %8.2f ns/req  (baseline %.2f, "
                "speedup %.2fx)\n",
                queue_full_ns, baseline_queue_full_ns,
                baseline_queue_full_ns / queue_full_ns);

    IdleFfNs idle_ff = medianOf(
        [&] { return benchQueueIdleFf(queue_workload, 0.02, true); },
        [](const IdleFfNs &r) { return r.fast; });
    std::printf("queue idle-ff k=8    %8.2f ns/req fast / %.2f legacy "
                "(speedup %.2fx, %llu fast-forwards, load 0.02)\n",
                idle_ff.fast, idle_ff.legacy,
                idle_ff.legacy / idle_ff.fast,
                static_cast<unsigned long long>(idle_ff.fast_forwards));
    IdleFfNs idle_ff_busy = medianOf(
        [&] { return benchQueueIdleFf(queue_workload, 0.3, false); },
        [](const IdleFfNs &r) { return r.fast; });
    std::printf("queue idle-ff busy   %8.2f ns/req fast / %.2f legacy "
                "(speedup %.2fx, %llu fast-forwards, load 0.3)\n",
                idle_ff_busy.fast, idle_ff_busy.legacy,
                idle_ff_busy.legacy / idle_ff_busy.fast,
                static_cast<unsigned long long>(
                    idle_ff_busy.fast_forwards));

    // Replica scaling: fixed 10M-request budget split across R
    // streams (work-conserving), plus the converged stopping-rule
    // run the replicas exist to accelerate. Wall-clock speedup here
    // depends on available cores — the JSON carries `threads` so
    // cross-host diffs don't misread a 1-core container as a
    // regression. Statistics stay bit-identical per R regardless.
    const unsigned replica_threads = ThreadPool::threadsFromEnv();
    std::vector<std::uint32_t> replica_counts{1, 2, 4, 8};
    std::vector<ReplicaBenchResult> fixed_total;
    for (std::uint32_t r : replica_counts) {
        fixed_total.push_back(benchReplicatedRun(r, false));
        const ReplicaBenchResult &b = fixed_total.back();
        std::printf("replicas R=%-2u fixed  %8.3f s  (10M req, p99 "
                    "%.1f us, speedup vs R=1 %.2fx, %u threads)\n",
                    r, b.seconds, b.p99 * 1e6,
                    fixed_total.front().seconds / b.seconds,
                    replica_threads);
    }
    ReplicaBenchResult conv1 = benchReplicatedRun(1, true);
    ReplicaBenchResult conv8 = benchReplicatedRun(8, true);
    std::printf("replicas converged   %8.3f s R=1 / %.3f s R=8  "
                "(speedup %.2fx, p99 %.1f vs %.1f us)\n",
                conv1.seconds, conv8.seconds,
                conv1.seconds / conv8.seconds, conv1.p99 * 1e6,
                conv8.p99 * 1e6);

    GridSpec spec = reducedFig5Spec();
    auto t0 = BenchClock::now();
    Grid grid = runGrid(spec);
    double grid_cold_s = secondsSince(t0);
    t0 = BenchClock::now();
    Grid grid_warm = runGrid(spec);
    double grid_warm_s = secondsSince(t0);
    std::printf("fig5 grid (8 thr)    %8.3f s cold / %.3f s warm  "
                "(baseline %.3f/%.3f, cold speedup %.2fx)\n",
                grid_cold_s, grid_warm_s, baseline_grid_cold_s,
                baseline_grid_warm_s, baseline_grid_cold_s / grid_cold_s);
    if (grid.cells.size() != grid_warm.cells.size()) {
        std::fprintf(stderr, "FATAL: grid size changed between runs\n");
        return 1;
    }

    // Fast-path activation counters: proof the measured numbers went
    // through the new paths, not silently through the legacy ones.
    CalibrationMemoStats memo = calibrationMemoStats();
    std::printf("fast-path counters   split-phase ops %llu, skipped "
                "polls %llu (%llu cycles), calib probes %llu / wide "
                "hits %llu, idle seats %llu, simd %s, vmath lanes "
                "%llu\n",
                static_cast<unsigned long long>(block_ns.split_phase_ops),
                static_cast<unsigned long long>(hsmt_ns.ff_polls),
                static_cast<unsigned long long>(hsmt_ns.ff_cycles),
                static_cast<unsigned long long>(memo.probes),
                static_cast<unsigned long long>(memo.wide_hits),
                static_cast<unsigned long long>(idle_ff.fast_forwards),
                simd::kSimdCompiled ? "compiled" : "off",
                static_cast<unsigned long long>(expo.vmath_lanes));

    std::ofstream json("BENCH_hotpath.json");
    json.precision(6);
    json << "{\n"
         << "  \"note\": \"baseline_* measured at this PR's parent "
            "commit, same host and build type\",\n"
         << "  \"process_op\": {\n"
         << "    \"ns_per_op\": " << process_op_ns << ",\n"
         << "    \"baseline_ns_per_op\": " << baseline_process_op_ns
         << ",\n"
         << "    \"speedup\": "
         << baseline_process_op_ns / process_op_ns << "\n  },\n"
         << "  \"cache_access_ns\": {\n"
         << "    \"fast\": " << cache_ns.fast << ",\n"
         << "    \"forced_slow\": " << cache_ns.slow << ",\n"
         << "    \"speedup\": " << cache_ns.slow / cache_ns.fast
         << ",\n"
         << "    \"bit_identical\": true\n  },\n"
         << "  \"tlb_lookup_ns\": {\n"
         << "    \"fast\": " << tlb_ns.fast << ",\n"
         << "    \"forced_slow\": " << tlb_ns.slow << ",\n"
         << "    \"speedup\": " << tlb_ns.slow / tlb_ns.fast
         << "\n  },\n"
         << "  \"core_block_step\": {\n"
         << "    \"per_op_ns\": " << block_ns.per_op << ",\n"
         << "    \"block_ns\": " << block_ns.block << ",\n"
         << "    \"speedup\": " << block_ns.per_op / block_ns.block
         << "\n  },\n"
         << "  \"precompute_block\": {\n"
         << "    \"simd_ns_per_op\": " << precomp_ns.simd << ",\n"
         << "    \"forced_slow_ns_per_op\": " << precomp_ns.scalar
         << ",\n"
         << "    \"speedup\": " << precomp_ns.scalar / precomp_ns.simd
         << ",\n"
         << "    \"bit_identical\": true\n  },\n"
         << "  \"hsmt_unit_step_ns\": {\n"
         << "    \"fast\": " << hsmt_ns.fast << ",\n"
         << "    \"forced_slow\": " << hsmt_ns.legacy << ",\n"
         << "    \"speedup\": " << hsmt_ns.legacy / hsmt_ns.fast
         << "\n  },\n"
         << "  \"sampling_ns\": {\n"
         << "    \"exponential\": {\"virtual\": " << expo.virt
         << ", \"fast\": " << expo.fast << ", \"block\": "
         << expo.block << "},\n"
         << "    \"scaled_empirical\": {\"virtual\": "
         << scaled_emp.virt << ", \"fast\": " << scaled_emp.fast
         << ", \"block\": " << scaled_emp.block << "}\n  },\n"
         << "  \"vector_log\": {\n"
         << "    \"block_ns\": " << expo.block << ",\n"
         << "    \"block_vmath_off_ns\": " << expo.block_vmath_off
         << ",\n"
         << "    \"speedup\": "
         << expo.block_vmath_off / expo.block << ",\n"
         << "    \"bit_identical\": true\n  },\n"
         << "  \"queue_step_k8\": {\n"
         << "    \"old_ns_per_req\": " << queue_old_ns << ",\n"
         << "    \"new_ns_per_req\": " << queue_new_ns << ",\n"
         << "    \"speedup\": " << queue_old_ns / queue_new_ns
         << ",\n"
         << "    \"bit_identical\": "
         << (identical ? "true" : "false") << "\n  },\n"
         << "  \"scheduling_only_ns\": {\n"
         << "    \"k8\": {\"scan\": " << sched8.scan
         << ", \"heap\": " << sched8.heap << ", \"speedup\": "
         << sched8.scan / sched8.heap << "},\n"
         << "    \"k64\": {\"scan\": " << sched64.scan
         << ", \"heap\": " << sched64.heap << ", \"speedup\": "
         << sched64.scan / sched64.heap << "}\n  },\n"
         << "  \"run_queue_sim_k8\": {\n"
         << "    \"ns_per_req\": " << queue_full_ns << ",\n"
         << "    \"baseline_ns_per_req\": " << baseline_queue_full_ns
         << ",\n"
         << "    \"speedup\": "
         << baseline_queue_full_ns / queue_full_ns << "\n  },\n"
         << "  \"queue_idle_ff_k8\": {\n"
         << "    \"ns_per_req\": " << idle_ff.fast << ",\n"
         << "    \"forced_slow_ns_per_req\": " << idle_ff.legacy
         << ",\n"
         << "    \"busy_ns_per_req\": " << idle_ff_busy.fast << ",\n"
         << "    \"busy_forced_slow_ns_per_req\": " << idle_ff_busy.legacy
         << ",\n"
         << "    \"speedup\": " << idle_ff.legacy / idle_ff.fast
         << ",\n"
         << "    \"bit_identical\": true\n  },\n"
         << "  \"replica_scaling\": {\n"
         << "    \"threads\": " << replica_threads << ",\n"
         << "    \"fixed_total_10m\": {\n";
    for (std::size_t i = 0; i < replica_counts.size(); ++i) {
        const ReplicaBenchResult &b = fixed_total[i];
        json << "      \"r" << replica_counts[i]
             << "\": {\"seconds\": " << b.seconds
             << ", \"p99_us\": " << b.p99 * 1e6
             << ", \"speedup_vs_r1\": "
             << fixed_total.front().seconds / b.seconds << "}"
             << (i + 1 == replica_counts.size() ? "\n" : ",\n");
    }
    json << "    },\n"
         << "    \"converged_p99\": {\n"
         << "      \"r1_seconds\": " << conv1.seconds << ",\n"
         << "      \"r8_seconds\": " << conv8.seconds << ",\n"
         << "      \"speedup\": " << conv1.seconds / conv8.seconds
         << ",\n"
         << "      \"r1_completed\": " << conv1.completed << ",\n"
         << "      \"r8_completed\": " << conv8.completed << "\n"
         << "    }\n  },\n"
         << "  \"fig5_reduced_grid\": {\n"
         << "    \"threads\": 8,\n"
         << "    \"cells\": " << grid.cells.size() << ",\n"
         << "    \"cold_s\": " << grid_cold_s << ",\n"
         << "    \"warm_s\": " << grid_warm_s << ",\n"
         << "    \"baseline_cold_s\": " << baseline_grid_cold_s
         << ",\n"
         << "    \"baseline_warm_s\": " << baseline_grid_warm_s
         << ",\n"
         << "    \"cold_speedup\": "
         << baseline_grid_cold_s / grid_cold_s << "\n  },\n"
         << "  \"fast_path\": {\n"
         << "    \"note\": \"activation counters, not timings — "
            "bench_diff.py ignores this subtree\",\n"
         // dpx-fast-path: Cache::setFastPathEnabled, DyadMemorySystem::setFastPathsEnabled
         << "    \"cache_fast_hits\": " << cache_ns.activations
         << ",\n"
         // dpx-fast-path: Tlb::setFastPathEnabled
         << "    \"tlb_fast_hits\": " << tlb_ns.activations << ",\n"
         // dpx-fast-path: CoreEngine::setSplitPhaseEnabled
         << "    \"split_phase_ops\": " << block_ns.split_phase_ops
         << ",\n"
         // dpx-fast-path: CoreEngine::setSoaPipelineEnabled, InstrSource::setSoaPipelineEnabled
         << "    \"soa_block_ops\": " << block_ns.soa_block_ops
         << ",\n"
         // dpx-fast-path: SyntheticStream::setSoaDrawEnabled
         << "    \"soa_draw_refills\": " << block_ns.soa_draw_refills
         << ",\n"
         // dpx-fast-path: HsmtUnit::setFastForwardEnabled, ScenarioConfig::hsmt_fast_forward
         << "    \"fast_forwarded_polls\": " << hsmt_ns.ff_polls
         << ",\n"
         << "    \"fast_forwarded_cycles\": " << hsmt_ns.ff_cycles
         << ",\n"
         // dpx-fast-path: setMemoWideningEnabled
         << "    \"calibration_probes\": " << memo.probes << ",\n"
         << "    \"calibration_wide_hits\": " << memo.wide_hits
         << ",\n"
         // dpx-fast-path: ServerSchedule::setIdleFastForwardEnabled, QueueSimConfig::idle_fast_forward
         << "    \"queue_idle_fast_forwards\": "
         << idle_ff.fast_forwards << ",\n"
         // dpx-fast-path: simd::setSimdEnabled
         << "    \"simd_compiled\": " << (simd::kSimdCompiled ? 1 : 0)
         << ",\n"
         // dpx-fast-path: vmath::setVmathEnabled
         << "    \"vmath_block_lanes\": " << expo.vmath_lanes
         << "\n  }\n"
         << "}\n";
    std::printf("\nwrote BENCH_hotpath.json\n");
    return 0;
}
