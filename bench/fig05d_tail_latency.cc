/**
 * @file
 * Figure 5(d): 99th-percentile tail latency under the offered load,
 * normalized to the Baseline design at the same load. Service-time
 * populations measured in the cycle-level simulator feed the
 * BigHouse-lite M/G/1 stage (Section V methodology).
 */

#include <cstdio>

#include "fig5_common.hh"

using namespace duplexity;
using namespace duplexity::bench;

int
main()
{
    Grid grid = bench::runGrid(6'000'000);
    printPanel(
        "Figure 5(d): p99 tail latency, normalized to Baseline",
        grid,
        [&grid](const GridCell &cell) {
            double base = queuedP99Us(
                grid.at(cell.service, cell.load,
                        DesignKind::Baseline),
                cell.load);
            double p99 = queuedP99Us(cell.result, cell.load);
            return base > 0.0 ? p99 / base : 0.0;
        },
        "x Baseline (lower is better)");

    auto worst = [&](DesignKind design) {
        double worst_ratio = 0.0;
        for (const GridCell &cell : grid.cells) {
            if (cell.design != design)
                continue;
            double base = queuedP99Us(
                grid.at(cell.service, cell.load,
                        DesignKind::Baseline),
                cell.load);
            if (base > 0.0) {
                worst_ratio =
                    std::max(worst_ratio,
                             queuedP99Us(cell.result, cell.load) /
                                 base);
            }
        }
        return worst_ratio;
    };
    std::printf("Worst-case p99 inflation vs baseline: SMT %.2fx, "
                "MorphCore %.2fx, Duplexity %.2fx\n",
                worst(DesignKind::Smt),
                worst(DesignKind::MorphCore),
                worst(DesignKind::Duplexity));
    std::printf("Paper shape: SMT/MorphCore(+) inflate p99 by up to "
                "7.2x/5.8x/4.9x;\nDuplexity stays within ~19%% of "
                "the baseline tail.\n");
    return 0;
}
