#include "fig5_common.hh"

#include <cstdio>

#include "queueing/queue_sim.hh"
#include "sim/logging.hh"
#include "workload/microservice.hh"

namespace duplexity::bench
{

const std::vector<double> &
loads()
{
    static const std::vector<double> values{0.3, 0.5, 0.7};
    return values;
}

const ScenarioResult &
Grid::at(MicroserviceKind service, double load,
         DesignKind design) const
{
    for (const GridCell &cell : cells) {
        if (cell.service == service && cell.design == design &&
            std::abs(cell.load - load) < 1e-9) {
            return cell.result;
        }
    }
    fatal("grid cell not found");
}

Grid
runGrid(Cycle default_measure)
{
    Grid grid;
    const Cycle measure = measureCyclesFromEnv(default_measure);
    for (MicroserviceKind service : allMicroservices()) {
        for (double load : loads()) {
            for (DesignKind design : allDesigns()) {
                ScenarioConfig cfg;
                cfg.design = design;
                cfg.service = service;
                cfg.load = load;
                cfg.measure_cycles = measure;
                grid.cells.push_back(
                    {service, load, design, runScenario(cfg)});
            }
        }
    }
    return grid;
}

double
chipOpsPerSecond(const ScenarioResult &result)
{
    return static_cast<double>(result.activity.totalOps()) /
           result.seconds;
}

double
performanceDensity(const ScenarioResult &result)
{
    DesignConfig design = makeDesign(result.design);
    return chipOpsPerSecond(result) /
           pairedChipAreaMm2(design.area_kind);
}

double
energyPerOp(const ScenarioResult &result)
{
    static const EnergyModel model;
    DesignConfig design = makeDesign(result.design);
    return model.energyPerOpNj(
        pairedChipAreaMm2(design.area_kind), result.activity);
}

double
queuedP99Us(const ScenarioResult &result, double offered_load)
{
    if (result.service_us.count() < 16)
        return 0.0;
    // BigHouse stage: replay the measured service population through
    // an FCFS M/G/1 queue at the requested offered load relative to
    // the measured baseline capacity.
    double lambda =
        offered_load / fromMicros(baselineServiceUs(result.service));
    QueueSimConfig cfg;
    cfg.interarrival = makeExponential(1.0 / lambda);
    cfg.service = makeScaled(
        makeEmpirical(result.service_us.samples()), 1e-6);
    cfg.max_batches = 60;
    cfg.seed = 1234;
    QueueSimResult queue = runQueueSim(cfg);
    return toMicros(queue.p99Sojourn());
}

void
printPanel(const std::string &title, const Grid &grid,
           const std::function<double(const GridCell &)> &metric,
           const std::string &unit)
{
    std::printf("%s\n", title.c_str());
    std::printf("%-10s %-5s", "workload", "load");
    for (DesignKind design : allDesigns())
        std::printf(" %14s", toString(design));
    std::printf("   [%s]\n", unit.c_str());
    for (MicroserviceKind service : allMicroservices()) {
        for (double load : loads()) {
            std::printf("%-10s %4.0f%%", toString(service),
                        100.0 * load);
            for (DesignKind design : allDesigns()) {
                GridCell cell{service, load, design,
                              grid.at(service, load, design)};
                std::printf(" %14.4f", metric(cell));
            }
            std::printf("\n");
        }
    }
    std::printf("\n");
}

} // namespace duplexity::bench
