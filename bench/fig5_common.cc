#include "fig5_common.hh"

#include <cstdio>

#include "queueing/queue_sim.hh"
#include "sim/logging.hh"
#include "workload/microservice.hh"

namespace duplexity::bench
{

const std::vector<double> &
loads()
{
    return evaluationLoads();
}

Grid
runGrid(Cycle default_measure)
{
    GridSpec spec;
    spec.measure_cycles = measureCyclesFromEnv(default_measure);
    Grid grid = duplexity::runGrid(spec);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "grid: %zu cells on %u threads in %.1fs "
                  "(serial-equivalent %.1fs, speedup %.2fx, "
                  "%.2fs/cell)",
                  grid.sweep.cells, grid.sweep.threads,
                  grid.sweep.wall_seconds,
                  grid.sweep.totalCellSeconds(),
                  grid.sweep.parallelSpeedup(),
                  grid.sweep.cell_seconds.mean());
    inform(line);
    return grid;
}

double
chipOpsPerSecond(const ScenarioResult &result)
{
    return static_cast<double>(result.activity.totalOps()) /
           result.seconds;
}

double
performanceDensity(const ScenarioResult &result)
{
    DesignConfig design = makeDesign(result.design);
    return chipOpsPerSecond(result) /
           pairedChipAreaMm2(design.area_kind);
}

double
energyPerOp(const ScenarioResult &result)
{
    static const EnergyModel model;
    DesignConfig design = makeDesign(result.design);
    return model.energyPerOpNj(
        pairedChipAreaMm2(design.area_kind), result.activity);
}

double
queuedP99Us(const ScenarioResult &result, double offered_load)
{
    if (result.service_us.count() < 16)
        return 0.0;
    // BigHouse stage: replay the measured service population through
    // an FCFS M/G/1 queue at the requested offered load relative to
    // the measured baseline capacity.
    double lambda =
        offered_load / fromMicros(baselineServiceUs(result.service));
    QueueSimConfig cfg;
    cfg.interarrival = makeExponential(1.0 / lambda);
    cfg.service = makeScaled(
        makeEmpirical(result.service_us.samples()), 1e-6);
    cfg.max_batches = 60;
    cfg.seed = 1234;
    QueueSimResult queue = runQueueSim(cfg);
    return toMicros(queue.p99Sojourn());
}

void
printPanel(const std::string &title, const Grid &grid,
           const std::function<double(const GridCell &)> &metric,
           const std::string &unit)
{
    std::printf("%s\n", title.c_str());
    std::printf("%-10s %-5s", "workload", "load");
    for (DesignKind design : allDesigns())
        std::printf(" %14s", toString(design));
    std::printf("   [%s]\n", unit.c_str());
    for (MicroserviceKind service : allMicroservices()) {
        for (double load : loads()) {
            std::printf("%-10s %4.0f%%", toString(service),
                        100.0 * load);
            for (DesignKind design : allDesigns()) {
                GridCell cell{service, load, design,
                              grid.at(service, load, design)};
                std::printf(" %14.4f", metric(cell));
            }
            std::printf("\n");
        }
    }
    std::printf("\n");
}

} // namespace duplexity::bench
