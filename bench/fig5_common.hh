/**
 * @file
 * Shared harness for the Figure 5 family: runs the full evaluation
 * grid (4 stalling microservices + WordStem) x {30,50,70}% load x
 * all seven designs, and provides the derived metrics each figure
 * reports. Each bench binary regenerates exactly one panel.
 */

#ifndef DPX_BENCH_FIG5_COMMON_HH
#define DPX_BENCH_FIG5_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "core/scenario.hh"
#include "power/area_model.hh"
#include "power/energy_model.hh"

namespace duplexity::bench
{

struct GridCell
{
    MicroserviceKind service;
    double load;
    DesignKind design;
    ScenarioResult result;
};

struct Grid
{
    std::vector<GridCell> cells;

    const ScenarioResult &at(MicroserviceKind service, double load,
                             DesignKind design) const;
};

/** The evaluation loads of Section VI. */
const std::vector<double> &loads();

/** Run the whole grid (measure cycles from DPX_MEASURE_CYCLES). */
Grid runGrid(Cycle default_measure = 1'500'000);

/** Total chip instructions/s (master-side + lender) of a cell. */
double chipOpsPerSecond(const ScenarioResult &result);

/** Performance density in ops/s/mm^2 (Figure 5(b)). */
double performanceDensity(const ScenarioResult &result);

/** Energy per instruction in nJ (Figure 5(c)). */
double energyPerOp(const ScenarioResult &result);

/**
 * 99th-percentile sojourn (µs) through the BigHouse-style M/G/1
 * stage at @p offered_load of the service's nominal capacity.
 */
double queuedP99Us(const ScenarioResult &result, double offered_load);

/** Print one figure panel: rows service x load, columns designs. */
void printPanel(
    const std::string &title, const Grid &grid,
    const std::function<double(const GridCell &)> &metric,
    const std::string &unit);

} // namespace duplexity::bench

#endif // DPX_BENCH_FIG5_COMMON_HH
