/**
 * @file
 * Shared harness for the Figure 5 family: runs the full evaluation
 * grid (4 stalling microservices + WordStem) x {30,50,70}% load x
 * all seven designs on the parallel sweep engine (core/grid.hh), and
 * provides the derived metrics each figure reports. Each bench
 * binary regenerates exactly one panel. DPX_THREADS controls the
 * worker count; the Grid is bit-identical for every setting.
 */

#ifndef DPX_BENCH_FIG5_COMMON_HH
#define DPX_BENCH_FIG5_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "core/grid.hh"
#include "core/scenario.hh"
#include "power/area_model.hh"
#include "power/energy_model.hh"

namespace duplexity::bench
{

/** The evaluation loads of Section VI. */
const std::vector<double> &loads();

/**
 * Run the whole grid in parallel (measure cycles from
 * DPX_MEASURE_CYCLES, worker count from DPX_THREADS) and report the
 * sweep timing on stderr.
 */
Grid runGrid(Cycle default_measure = 1'500'000);

/** Total chip instructions/s (master-side + lender) of a cell. */
double chipOpsPerSecond(const ScenarioResult &result);

/** Performance density in ops/s/mm^2 (Figure 5(b)). */
double performanceDensity(const ScenarioResult &result);

/** Energy per instruction in nJ (Figure 5(c)). */
double energyPerOp(const ScenarioResult &result);

/**
 * 99th-percentile sojourn (µs) through the BigHouse-style M/G/1
 * stage at @p offered_load of the service's nominal capacity.
 */
double queuedP99Us(const ScenarioResult &result, double offered_load);

/** Print one figure panel: rows service x load, columns designs. */
void printPanel(
    const std::string &title, const Grid &grid,
    const std::function<double(const GridCell &)> &metric,
    const std::string &unit);

} // namespace duplexity::bench

#endif // DPX_BENCH_FIG5_COMMON_HH
