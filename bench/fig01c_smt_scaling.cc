/**
 * @file
 * Figure 1(c): normalized throughput of the FLANN microservice as the
 * number of SMT threads on a 4-wide OoO core grows from 1 to 16, for
 * the stall-free baseline and the FLANN-9-1 / FLANN-10-10 / FLANN-1-1
 * compute:stall variants (saturated load; stalls stall in place).
 */

#include <cstdio>
#include <vector>

#include "core/calibration.hh"
#include "core/scenario.hh"
#include "core/smt_sweep.hh"
#include "sim/parallel_sweep.hh"

using namespace duplexity;

namespace
{

struct Variant
{
    const char *name;
    double compute_us;
    double stall_us;
};

} // namespace

int
main()
{
    const std::vector<Variant> variants{
        {"baseline", 10.0, 0.0},
        {"FLANN-9-1", 9.0, 1.0},
        {"FLANN-10-10", 10.0, 10.0},
        {"FLANN-1-1", 1.0, 1.0},
    };

    const Cycle measure = measureCyclesFromEnv(800'000);

    std::printf("Figure 1(c): throughput vs SMT thread count "
                "(4-wide OoO)\n");
    std::printf("%8s", "threads");
    for (const Variant &v : variants)
        std::printf(" %12s", v.name);
    std::printf("\n");

    // All (threads x variant) points are independent: fan them out
    // on the parallel sweep engine, then normalize to the stall-free
    // single-thread throughput (the first point).
    std::vector<SmtSweepConfig> points;
    for (std::uint32_t threads = 1; threads <= 16; ++threads) {
        for (const Variant &v : variants) {
            SmtSweepConfig cfg;
            cfg.mode = IssueMode::OutOfOrder;
            cfg.threads = threads;
            cfg.workload = [v](ThreadId) {
                // Concurrent requests of one FLANN instance share
                // the LSH tables: same data region for all threads.
                return calibratedFlannXY(v.compute_us, v.stall_us,
                                         0);
            };
            cfg.measure_cycles = measure;
            cfg.seed = deriveCellSeed(
                7, {threads, coordKey(v.compute_us),
                    coordKey(v.stall_us)});
            points.push_back(cfg);
        }
    }
    std::vector<SmtSweepResult> results = runSmtSweepMany(points);

    const double norm = results.front().total_ipc;
    std::size_t point = 0;
    for (std::uint32_t threads = 1; threads <= 16; ++threads) {
        std::printf("%8u", threads);
        for (std::size_t v = 0; v < variants.size(); ++v) {
            std::printf(" %12.3f",
                        results[point++].total_ipc / norm);
        }
        std::printf("\n");
    }

    std::printf("\nPaper shape: the stall-free baseline saturates "
                "around 8 threads;\nstalling variants keep gaining "
                "well past 8 (FLANN-1-1 peaks latest) yet\nnever "
                "recover the stall-free peak; FLANN-1-1 trails "
                "FLANN-10-10.\n");
    return 0;
}
