/**
 * @file
 * Figure 1(a): utilization of a closed-loop system as a function of
 * stall duration and the computation interval between stalls. Prints
 * the surface as a table (stall duration rows, compute columns).
 */

#include <cstdio>
#include <vector>

#include "queueing/analytic.hh"

using namespace duplexity;

int
main()
{
    const std::vector<double> stalls_us{0.1, 0.3, 1, 3, 10, 30, 100};
    const std::vector<double> computes_us{0.1, 0.3, 1, 3,
                                          10,  30,  100};

    std::printf("Figure 1(a): closed-loop utilization (%%)\n");
    std::printf("%12s", "stall\\comp");
    for (double c : computes_us)
        std::printf(" %7.1fus", c);
    std::printf("\n");
    for (double stall : stalls_us) {
        std::printf("%10.1fus", stall);
        for (double compute : computes_us) {
            std::printf(" %8.1f%%",
                        100.0 *
                            closedLoopUtilization(compute, stall));
        }
        std::printf("\n");
    }

    std::printf("\nPaper shape: ~100%% when stalls are short or "
                "compute intervals long;\nutilization collapses when "
                "stalls exceed the compute interval.\n");
    return 0;
}
