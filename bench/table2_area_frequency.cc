/**
 * @file
 * Table II: area and clock frequency of every core variant from the
 * McPAT/CACTI-lite model, with the paper's reported values alongside
 * and the Section V overhead summary.
 */

#include <cstdio>
#include <vector>

#include "power/area_model.hh"

using namespace duplexity;

int
main()
{
    struct Row
    {
        CoreKind kind;
        double paper_mm2;
        double paper_ghz;
    };
    const std::vector<Row> rows{
        {CoreKind::BaselineOoO, 12.1, 3.40},
        {CoreKind::Smt2, 12.2, 3.35},
        {CoreKind::MorphCore, 12.4, 3.30},
        {CoreKind::MasterCore, 12.7, 3.25},
        {CoreKind::MasterCoreReplicated, 16.7, 3.25},
        {CoreKind::LenderCore, 5.5, 3.40},
    };

    std::printf("Table II: area and clock frequencies (32nm)\n");
    std::printf("%-28s %10s %10s %10s %10s\n", "component",
                "mm2", "paper", "GHz", "paper");
    for (const Row &row : rows) {
        std::printf("%-28s %10.2f %10.1f %10.3f %10.2f\n",
                    toString(row.kind),
                    coreArea(row.kind).total(), row.paper_mm2,
                    coreFrequencyGhz(row.kind), row.paper_ghz);
    }
    std::printf("%-28s %10.2f %10.1f %10s %10s\n", "LLC (mm2/MB)",
                llcAreaPerMb(), 3.9, "n/a", "n/a");

    double base = coreArea(CoreKind::BaselineOoO).total();
    std::printf("\nSection V overheads:\n");
    std::printf("  master-core area overhead   : %5.1f%% "
                "(paper ~5%%)\n",
                100.0 *
                    (coreArea(CoreKind::MasterCore).total() / base -
                     1.0));
    std::printf("  replication area overhead   : %5.1f%% "
                "(paper ~38%%)\n",
                100.0 * (coreArea(CoreKind::MasterCoreReplicated)
                                 .total() /
                             base -
                         1.0));
    std::printf("  master cycle-time penalty   : %5.1f%% "
                "(paper ~4%%)\n",
                100.0 * (1.0 -
                         coreFrequencyGhz(CoreKind::MasterCore) /
                             coreFrequencyGhz(
                                 CoreKind::BaselineOoO)));

    std::printf("\nMaster-core component breakdown:\n");
    for (const ComponentArea &part :
         coreArea(CoreKind::MasterCore).parts) {
        std::printf("  %-18s %8.3f mm2 (%4.1f%% of baseline)\n",
                    part.name.c_str(), part.mm2,
                    100.0 * part.mm2 / base);
    }
    return 0;
}
