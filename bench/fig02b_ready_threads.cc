/**
 * @file
 * Figure 2(b): probability of having at least 8 ready threads as a
 * function of the number of virtual contexts, for 10% and 50% per-
 * thread stall probability (the binomial model of Section III-A).
 */

#include <cstdio>

#include "queueing/analytic.hh"

using namespace duplexity;

int
main()
{
    std::printf("Figure 2(b): P(>=8 ready threads) vs virtual "
                "contexts\n");
    std::printf("%10s %14s %14s\n", "contexts", "p_stall=0.1",
                "p_stall=0.5");
    for (std::uint32_t n = 8; n <= 32; ++n) {
        std::printf("%10u %14.4f %14.4f\n", n,
                    readyThreadsProbability(n, 0.1, 8),
                    readyThreadsProbability(n, 0.5, 8));
    }

    std::printf("\nContexts needed for 90%% supply: "
                "p=0.1 -> %u, p=0.5 -> %u\n",
                virtualContextsNeeded(0.1, 8, 0.90),
                virtualContextsNeeded(0.5, 8, 0.90));
    std::printf("Paper shape: ~11 contexts suffice at 10%% stall; "
                "21 at 50%% stall.\n");
    return 0;
}
