/**
 * @file
 * Figure 1(b): cumulative distribution of idle-period durations for
 * M/G/1 microservices at 200K and 1M QPS capacity under 30/50/70%
 * load. The analytic exponential law is printed next to an empirical
 * CDF measured by the BigHouse-lite discrete-event simulator.
 */

#include <cstdio>
#include <vector>

#include "queueing/analytic.hh"
#include "queueing/queue_sim.hh"
#include "sim/types.hh"

using namespace duplexity;

int
main()
{
    const std::vector<double> service_rates{200e3, 1e6};
    const std::vector<double> loads{0.3, 0.5, 0.7};
    const std::vector<double> ts_us{1, 2, 5, 10, 20, 50, 100};

    std::printf("Figure 1(b): idle-period CDF, analytic vs "
                "simulated\n");
    for (double rate : service_rates) {
        for (double load : loads) {
            // Empirical idle periods from the queueing simulator
            // with a heavy-tailed (G) service distribution: the law
            // depends only on the arrival rate.
            QueueSimConfig cfg = makeMg1(
                makeLogNormal(1.0 / rate, 0.8), load, 77);
            cfg.max_batches = 20;
            QueueSimResult res = runQueueSim(cfg);

            std::printf("\n%.0fK QPS @ %2.0f%% load (mean idle "
                        "%.2f us)\n",
                        rate / 1e3, 100 * load,
                        meanIdlePeriodUs(rate, load));
            std::printf("%10s %10s %10s\n", "t(us)", "analytic",
                        "simulated");
            for (double t : ts_us) {
                double sim_cdf = 0.0;
                std::uint64_t below = 0;
                for (double idle : res.idle_periods.samples())
                    below += toMicros(idle) <= t;
                if (!res.idle_periods.samples().empty()) {
                    sim_cdf =
                        static_cast<double>(below) /
                        res.idle_periods.samples().size();
                }
                std::printf("%10.1f %10.4f %10.4f\n", t,
                            idlePeriodCdf(rate, load, t), sim_cdf);
            }
        }
    }
    std::printf("\nPaper shape: individual idle periods last only a "
                "few us; e.g. 200K/1M QPS\nat 50%% load average 10us "
                "and 2us idle periods despite 50%% idleness.\n");
    return 0;
}
