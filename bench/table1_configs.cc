/**
 * @file
 * Table I: microarchitecture details, printed from the live
 * configuration objects so the table cannot drift from the code.
 */

#include <cstdio>

#include "core/designs.hh"
#include "cpu/core_engine.hh"
#include "mem/memory_system.hh"

using namespace duplexity;

int
main()
{
    CoreEngineConfig engine;
    MemSystemConfig mem = MemSystemConfig::makeDefault();

    std::printf("Table I: microarchitecture details\n\n");
    std::printf("Baseline/SMT : %u-wide OoO, %u-entry ROB/PRF, "
                "%u-entry LQ, %u-entry SQ\n",
                engine.issue_width, engine.rob_entries,
                engine.lq_entries, engine.sq_entries);
    std::printf("               tournament predictor "
                "(16K bimodal/16K gshare/16K selector),\n"
                "               32-entry RAS, 2K-entry BTB, "
                "%u-entry I/D TLBs\n",
                mem.itlb.entries);
    std::printf("Lender-core  : 8-way InO HSMT, 32 virtual "
                "contexts, %u-wide issue,\n"
                "               round-robin fetch, gshare(8K), "
                "2K-entry BTB\n",
                engine.issue_width);

    DesignConfig master = makeDesign(DesignKind::Duplexity);
    std::printf("Master-core  : morphs single-thread OoO <-> InO "
                "HSMT; uarch as baseline;\n"
                "               tournament(16K)+gshare(8K); "
                "separate per-mode TLBs;\n"
                "               %llu KB / %llu KB I/D write-through "
                "L0s; %llu-cycle resume\n",
                static_cast<unsigned long long>(
                    mem.l0i.size_bytes / 1024),
                static_cast<unsigned long long>(
                    mem.l0d.size_bytes / 1024),
                static_cast<unsigned long long>(
                    master.resume_penalty));
    std::printf("L1 caches    : private %llu KB I/D, %u B lines, "
                "%u-way\n",
                static_cast<unsigned long long>(
                    mem.l1i.size_bytes / 1024),
                mem.l1i.line_bytes, mem.l1i.assoc);
    std::printf("LLC          : %llu MB per dyad (1 MB/core), "
                "%u B lines, %u-way\n",
                static_cast<unsigned long long>(
                    mem.llc.size_bytes / (1024 * 1024)),
                mem.llc.line_bytes, mem.llc.assoc);
    std::printf("Memory       : %.0f ns access latency\n",
                mem.dram_ns);
    std::printf("NIC          : FDR 4x InfiniBand (56 Gbit/s, "
                "90M ops/s)\n");
    std::printf("Dyad link    : +%llu cycles to lender L1s\n",
                static_cast<unsigned long long>(
                    mem.dyad_link_cycles));
    return 0;
}
