/**
 * @file
 * Figure 5(c): energy per retired instruction (McPAT-lite),
 * normalized to the Baseline design.
 */

#include <cstdio>

#include "fig5_common.hh"

using namespace duplexity;
using namespace duplexity::bench;

int
main()
{
    Grid grid = bench::runGrid();
    printPanel("Figure 5(c): energy per instruction, normalized to "
               "Baseline",
               grid,
               [&grid](const GridCell &cell) {
                   double base = energyPerOp(grid.at(
                       cell.service, cell.load,
                       DesignKind::Baseline));
                   return energyPerOp(cell.result) / base;
               },
               "x Baseline (lower is better)");

    auto average = [&](DesignKind design) {
        double sum = 0.0;
        int n = 0;
        for (const GridCell &cell : grid.cells) {
            if (cell.design != design)
                continue;
            double base = energyPerOp(grid.at(
                cell.service, cell.load, DesignKind::Baseline));
            sum += energyPerOp(cell.result) / base;
            ++n;
        }
        return sum / n;
    };
    std::printf("Average energy vs baseline: SMT %.2fx, Duplexity "
                "%.2fx, Duplexity+repl %.2fx\n",
                average(DesignKind::Smt),
                average(DesignKind::Duplexity),
                average(DesignKind::DuplexityRepl));
    std::printf("Paper shape: Duplexity lowest nearly everywhere "
                "(-34%% vs baseline, -21%% vs SMT);\nreplication "
                "loses efficiency to its power-hungry duplicated "
                "structures.\n");
    return 0;
}
