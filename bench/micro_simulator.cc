/**
 * @file
 * google-benchmark micro-benchmarks for the simulator's own hot
 * paths: cache accesses, TLB lookups, branch prediction, pipeline-
 * model throughput, HSMT scheduling, and the queueing kernel. These
 * guard the simulator's performance, which bounds how much simulated
 * time the figure benches can afford.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "branch/predictor.hh"
#include "cpu/core_engine.hh"
#include "cpu/hsmt.hh"
#include "mem/memory_system.hh"
#include "queueing/queue_sim.hh"
#include "sim/rng.hh"
#include "workload/catalog.hh"

using namespace duplexity;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{});
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 22) * 8, false, ++now));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAccess(benchmark::State &state)
{
    Tlb tlb(TlbConfig{});
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.access(rng.below(1 << 26)));
}
BENCHMARK(BM_TlbAccess);

void
BM_TournamentPredict(benchmark::State &state)
{
    auto pred = makePredictor(PredictorConfig::Kind::Tournament);
    Rng rng(3);
    Addr pc = 0;
    for (auto _ : state) {
        pc = (pc + 64) & 0xFFFF;
        benchmark::DoNotOptimize(
            pred->predictAndUpdate(pc, rng.chance(0.9)));
    }
}
BENCHMARK(BM_TournamentPredict);

void
BM_PipelineOp(benchmark::State &state)
{
    DyadMemorySystem mem(MemSystemConfig::makeDefault());
    CoreEngine engine{CoreEngineConfig{}};
    auto pred = makePredictor(PredictorConfig::Kind::Tournament);
    Btb btb(2048, 4);
    ReturnAddressStack ras(32);
    Rng rng(4);
    BatchSource source(makeFlannXY(10.0, 0.0, 0), rng.fork(1));
    Lane lane;
    LaneConfig cfg = engine.defaultLaneConfig(IssueMode::OutOfOrder);
    cfg.path = mem.masterPath();
    cfg.branch = {pred.get(), &btb, &ras};
    lane.configure(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.processOp(lane, source.next()));
}
BENCHMARK(BM_PipelineOp);

void
BM_HsmtAdvance(benchmark::State &state)
{
    DyadMemorySystem mem(MemSystemConfig::makeDefault());
    CoreEngine engine{CoreEngineConfig{}};
    auto pred = makePredictor(PredictorConfig::Kind::GshareSmall);
    Btb btb(2048, 4);
    ReturnAddressStack ras(16);
    VirtualContextPool pool;
    Rng rng(5);
    std::vector<std::unique_ptr<BatchSource>> sources;
    std::vector<std::unique_ptr<VirtualContext>> ctxs;
    for (int i = 0; i < 32; ++i) {
        sources.push_back(std::make_unique<BatchSource>(
            makeBatch(BatchKind::PageRank, i + 1), rng.fork(i)));
        ctxs.push_back(std::make_unique<VirtualContext>(
            i + 1, sources.back().get()));
        pool.add(ctxs.back().get());
    }
    HsmtUnit unit(engine, pool, HsmtConfig{}, Frequency(3.4e9));
    LaneConfig proto = engine.defaultLaneConfig(IssueMode::InOrder);
    proto.path = mem.lenderPath();
    proto.branch = {pred.get(), &btb, &ras};
    unit.configureLanes(proto);
    unit.openWindow(0, HsmtUnit::never);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.advanceOne(nullptr));
}
BENCHMARK(BM_HsmtAdvance);

void
BM_QueueSimRequest(benchmark::State &state)
{
    QueueSimConfig cfg = makeMg1(makeExponential(1e-6), 0.7, 6);
    cfg.batch_size = 1000;
    cfg.max_batches = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(runQueueSim(cfg).completed);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_QueueSimRequest);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    Rng rng(7);
    MicroserviceSource source(
        makeMicroservice(MicroserviceKind::Rsc), rng.fork(1));
    for (auto _ : state)
        benchmark::DoNotOptimize(source.next());
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();
