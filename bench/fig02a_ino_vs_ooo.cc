/**
 * @file
 * Figure 2(a): aggregate throughput of multi-threaded SPEC-like
 * workload mixes for 1-10 InO or OoO SMT threads on a 4-wide core.
 * The point of the figure: the OoO advantage vanishes around 8
 * threads, which is why the lender-core datapath is in-order.
 */

#include <cstdio>

#include "core/scenario.hh"
#include "core/smt_sweep.hh"
#include "workload/catalog.hh"

using namespace duplexity;

int
main()
{
    const Cycle measure = measureCyclesFromEnv(800'000);

    auto mix_workload = [](ThreadId uid) {
        return makeSpecBatch(static_cast<SpecProfile>(uid % 3), uid);
    };

    std::printf("Figure 2(a): SPEC-mix throughput, InO vs OoO SMT\n");
    std::printf("%8s %10s %10s %12s\n", "threads", "OoO IPC",
                "InO IPC", "OoO/InO");
    for (std::uint32_t threads = 1; threads <= 10; ++threads) {
        SmtSweepConfig cfg;
        cfg.threads = threads;
        cfg.workload = mix_workload;
        cfg.measure_cycles = measure;

        cfg.mode = IssueMode::OutOfOrder;
        double ooo = runSmtSweep(cfg).total_ipc;
        cfg.mode = IssueMode::InOrder;
        double ino = runSmtSweep(cfg).total_ipc;

        std::printf("%8u %10.3f %10.3f %12.3f\n", threads, ooo, ino,
                    ooo / ino);
    }

    std::printf("\nPaper shape: OoO wins decisively at 1-2 threads; "
                "the gap shrinks steadily\nand has essentially "
                "vanished by ~8 threads.\n");
    return 0;
}
