/**
 * @file
 * Figure 2(a): aggregate throughput of multi-threaded SPEC-like
 * workload mixes for 1-10 InO or OoO SMT threads on a 4-wide core.
 * The point of the figure: the OoO advantage vanishes around 8
 * threads, which is why the lender-core datapath is in-order.
 */

#include <cstdio>
#include <vector>

#include "core/scenario.hh"
#include "core/smt_sweep.hh"
#include "sim/parallel_sweep.hh"
#include "workload/catalog.hh"

using namespace duplexity;

int
main()
{
    const Cycle measure = measureCyclesFromEnv(800'000);

    auto mix_workload = [](ThreadId uid) {
        return makeSpecBatch(static_cast<SpecProfile>(uid % 3), uid);
    };

    // 10 thread counts x 2 issue modes, fanned out on the parallel
    // sweep engine with identity-derived seeds.
    std::vector<SmtSweepConfig> points;
    for (std::uint32_t threads = 1; threads <= 10; ++threads) {
        for (IssueMode mode :
             {IssueMode::OutOfOrder, IssueMode::InOrder}) {
            SmtSweepConfig cfg;
            cfg.mode = mode;
            cfg.threads = threads;
            cfg.workload = mix_workload;
            cfg.measure_cycles = measure;
            cfg.seed = deriveCellSeed(
                7, {threads, static_cast<std::uint64_t>(mode)});
            points.push_back(cfg);
        }
    }
    std::vector<SmtSweepResult> results = runSmtSweepMany(points);

    std::printf("Figure 2(a): SPEC-mix throughput, InO vs OoO SMT\n");
    std::printf("%8s %10s %10s %12s\n", "threads", "OoO IPC",
                "InO IPC", "OoO/InO");
    for (std::uint32_t threads = 1; threads <= 10; ++threads) {
        double ooo = results[(threads - 1) * 2].total_ipc;
        double ino = results[(threads - 1) * 2 + 1].total_ipc;
        std::printf("%8u %10.3f %10.3f %12.3f\n", threads, ooo, ino,
                    ooo / ino);
    }

    std::printf("\nPaper shape: OoO wins decisively at 1-2 threads; "
                "the gap shrinks steadily\nand has essentially "
                "vanished by ~8 threads.\n");
    return 0;
}
