/**
 * @file
 * Figure 5(b): performance density (instructions retired per second
 * per mm^2 of chip), normalized to the Baseline design. Every
 * alternative is paired with a lender-style HSMT throughput core and
 * 2 MB of LLC (Section VI-B).
 */

#include <cstdio>

#include "fig5_common.hh"

using namespace duplexity;
using namespace duplexity::bench;

int
main()
{
    Grid grid = bench::runGrid();
    printPanel(
        "Figure 5(b): performance density, normalized to Baseline",
        grid,
        [&grid](const GridCell &cell) {
            double base = performanceDensity(grid.at(
                cell.service, cell.load, DesignKind::Baseline));
            return performanceDensity(cell.result) / base;
        },
        "x Baseline");

    auto average = [&](DesignKind design) {
        double sum = 0.0;
        int n = 0;
        for (const GridCell &cell : grid.cells) {
            if (cell.design != design)
                continue;
            double base = performanceDensity(grid.at(
                cell.service, cell.load, DesignKind::Baseline));
            sum += performanceDensity(cell.result) / base;
            ++n;
        }
        return sum / n;
    };
    std::printf("Average vs baseline: SMT %.2fx, Duplexity %.2fx, "
                "Duplexity+repl %.2fx\n",
                average(DesignKind::Smt),
                average(DesignKind::Duplexity),
                average(DesignKind::DuplexityRepl));
    std::printf("Paper shape: Duplexity highest (avg +49%% over "
                "baseline, +28%% over SMT);\nreplication loses "
                "~9%% density to Duplexity despite higher "
                "utilization.\n");
    return 0;
}
